// Command reachbench regenerates the tables and figures of Jin & Wang,
// "Simple, Fast, and Scalable Reachability Oracle" (VLDB 2013) on the
// synthetic dataset catalog.
//
// Usage:
//
//	reachbench -experiment table2 [-scale 16] [-queries 100000] [-methods DL,HL,GL] [-v]
//
// Experiments: table1 table2 table3 table4 table5 table6 table7 fig3 fig4
// small (tables 2-4 + fig3), large (tables 5-7 + fig4), or all.
//
// With -serve it instead load-tests a running reachd daemon in a closed
// loop and reports end-to-end queries/sec, p50/p99 request latency, and
// the share of requests shed by the daemon's admission gate (429):
//
//	reachbench -serve http://localhost:8080 -graph g.txt [-clients 8] [-batch 512] [-duration 10s]
//
// With -replicas N it self-hosts the serving stack being measured: the
// index is built once, snapshotted, mmap-loaded N times into N loopback
// reachd-equivalent replicas fronted by an in-process fleet router, and
// the closed loop drives the router. -replicas 1 vs a plain -serve run
// isolates the router's scatter-gather overhead; larger N shows fleet
// scaling without needing N machines:
//
//	reachbench -replicas 3 -graph g.txt [-method DL] [-clients 8] [-batch 512] [-duration 10s]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/dataset"
	"repro/internal/workload"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "which experiment to run (table1..table7, fig3, fig4, small, large, all)")
		scale      = flag.Int("scale", dataset.DefaultScale, "divisor applied to large dataset sizes")
		queries    = flag.Int("queries", workload.DefaultQueries, "queries per workload")
		methods    = flag.String("methods", "", "comma-separated method subset (default: all 12)")
		seed       = flag.Int64("seed", 1, "workload and randomized-build seed")
		verbose    = flag.Bool("v", false, "log per-dataset progress to stderr")
		serve      = flag.String("serve", "", "load-test a running reachd at this base URL instead of running experiments")
		graphFile  = flag.String("graph", "", "edge-list file the server loaded, to sample real vertex IDs (with -serve)")
		clients    = flag.Int("clients", 8, "concurrent load-generator clients (with -serve)")
		batch      = flag.Int("batch", 512, "pairs per /v1/batch request (with -serve)")
		duration   = flag.Duration("duration", 10*time.Second, "load-generation time (with -serve)")
		replicas   = flag.Int("replicas", 0, "spawn a local fleet: snapshot built once, mmap'd N times behind an in-process router (requires -graph)")
		fleetMeth  = flag.String("method", "DL", "index method for the -replicas fleet snapshot")
		fleetSnap  = flag.String("snapshot", "", "snapshot path for the -replicas fleet (reused if it exists; default: temp file)")
		noObs      = flag.Bool("no-observers", false, "disable the observer fast path on the -replicas fleet (end-to-end ablation)")
		wire       = flag.String("wire", "binary", "batch encoding toward the target: binary (JSON fallback when unsupported) or json (ablation)")
		muxOn      = flag.Bool("mux", true, "give the -replicas fleet stream-transport listeners so the router pipelines batches over persistent connections (false: HTTP only)")
	)
	flag.Parse()
	if *wire != "binary" && *wire != "json" {
		fmt.Fprintf(os.Stderr, "reachbench: unknown -wire %q (want binary or json)\n", *wire)
		os.Exit(1)
	}

	if *replicas > 0 {
		lf, err := startLocalFleet(*graphFile, *fleetSnap, *fleetMeth, *replicas, *noObs, *wire, *muxOn)
		if err != nil {
			fmt.Fprintf(os.Stderr, "reachbench: %v\n", err)
			os.Exit(1)
		}
		defer lf.stop()
		lg := &loadGen{
			base:     lf.base,
			graph:    *graphFile,
			clients:  *clients,
			batch:    *batch,
			duration: *duration,
			seed:     *seed,
			wire:     *wire,
		}
		if err := lg.run(); err != nil {
			lf.stop()
			fmt.Fprintf(os.Stderr, "reachbench: %v\n", err)
			os.Exit(1)
		}
		lf.stop()
		return
	}

	if *serve != "" {
		lg := &loadGen{
			base:     strings.TrimRight(*serve, "/"),
			graph:    *graphFile,
			clients:  *clients,
			batch:    *batch,
			duration: *duration,
			seed:     *seed,
			wire:     *wire,
		}
		if err := lg.run(); err != nil {
			fmt.Fprintf(os.Stderr, "reachbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	cfg := bench.Config{Scale: *scale, Queries: *queries, Seed: *seed}
	if *methods != "" {
		for _, m := range strings.Split(*methods, ",") {
			cfg.Methods = append(cfg.Methods, strings.TrimSpace(m))
		}
	}
	if *verbose {
		cfg.Verbose = os.Stderr
	}

	if err := run(*experiment, cfg); err != nil {
		fmt.Fprintf(os.Stderr, "reachbench: %v\n", err)
		os.Exit(1)
	}
}

func run(experiment string, cfg bench.Config) error {
	out := os.Stdout
	runOne := func(id string) error {
		switch id {
		case "table1":
			return bench.Table1(out, cfg)
		case "table2":
			return bench.QueryTable(out, "Table 2: query time (ms), equal workload, small graphs", dataset.Small, workload.Equal, cfg)
		case "table3":
			return bench.QueryTable(out, "Table 3: query time (ms), random workload, small graphs", dataset.Small, workload.Random, cfg)
		case "table4":
			return bench.ConstructionTable(out, "Table 4: construction time (ms), small graphs", dataset.Small, cfg)
		case "table5":
			return bench.QueryTable(out, "Table 5: query time (ms), equal workload, large graphs", dataset.Large, workload.Equal, cfg)
		case "table6":
			return bench.QueryTable(out, "Table 6: query time (ms), random workload, large graphs", dataset.Large, workload.Random, cfg)
		case "table7":
			return bench.ConstructionTable(out, "Table 7: construction time (ms), large graphs", dataset.Large, cfg)
		case "fig3":
			return bench.IndexSizeTable(out, "Figure 3: index size (number of integers), small graphs", dataset.Small, cfg)
		case "fig4":
			return bench.IndexSizeTable(out, "Figure 4: index size (number of integers), large graphs", dataset.Large, cfg)
		default:
			return fmt.Errorf("unknown experiment %q", id)
		}
	}

	switch experiment {
	case "all":
		if err := bench.Table1(out, cfg); err != nil {
			return err
		}
		fmt.Fprintln(out)
		if err := bench.RunGroup(out, dataset.Small, cfg); err != nil {
			return err
		}
		fmt.Fprintln(out)
		return bench.RunGroup(out, dataset.Large, cfg)
	case "small":
		// One pass per group: every index is built once per dataset and
		// reused across Tables 2-4 and Figure 3.
		return bench.RunGroup(out, dataset.Small, cfg)
	case "large":
		return bench.RunGroup(out, dataset.Large, cfg)
	default:
		return runOne(experiment)
	}
}
