package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"sync"
	"time"

	reach "repro"
	"repro/internal/fleet"
	"repro/internal/mux"
	"repro/internal/server"
)

// localFleet self-hosts a replicated serving stack inside the benchmark
// process: the index is built (or snapshot-loaded) ONCE, saved as a
// snapshot, and mmap-loaded N times — one immutable mapping per replica,
// exactly how a production fleet ships one snapshot file to N machines.
// Each replica serves real HTTP on a loopback port and an in-process
// fleet router fronts them, so the closed-loop numbers include every
// wire hop a distributed fleet pays except the network itself. Comparing
// -replicas 1 against a plain -serve run isolates the router's overhead;
// raising -replicas shows the scatter-gather scaling.
type localFleet struct {
	base     string
	servers  []*server.Server
	oracles  []*reach.Oracle
	router   *fleet.Router
	httpSrvs []*http.Server
	muxSrvs  []*mux.Server
	snapTmp  string // temp snapshot path to remove, if we created one
	stopOnce sync.Once
}

// startLocalFleet builds the snapshot and brings up n replicas + router.
// noObservers strips the observer fast path from every replica (and from
// the build), so a -no-observers run measures the pure index path — the
// end-to-end half of the ablation story. useMux gives every replica a
// loopback stream-transport listener (advertised via healthz, so the
// router negotiates it exactly as a production fleet would); false keeps
// all router→replica traffic on HTTP.
func startLocalFleet(graphPath, snapPath, method string, n int, noObservers bool, wire string, useMux bool) (*localFleet, error) {
	if graphPath == "" {
		return nil, fmt.Errorf("-replicas requires -graph (the fleet needs a graph to build its snapshot from)")
	}
	lf := &localFleet{}
	ok := false
	defer func() {
		if !ok {
			lf.stop()
		}
	}()

	// Build once; every replica will mmap this one artifact.
	snap := snapPath
	if snap == "" {
		f, err := os.CreateTemp("", "reachbench-fleet-*.snap")
		if err != nil {
			return nil, err
		}
		f.Close()
		snap, lf.snapTmp = f.Name(), f.Name()
	}
	if _, err := os.Stat(snap); err != nil || snapPath == "" {
		f, err := os.Open(graphPath)
		if err != nil {
			return nil, err
		}
		g, _, err2 := reach.ReadGraph(f)
		f.Close()
		if err2 != nil {
			return nil, err2
		}
		start := time.Now()
		oracle, err2 := reach.Build(g, reach.Method(method), reach.Options{NoObservers: noObservers})
		if err2 != nil {
			return nil, err2
		}
		if err2 := oracle.SaveFile(snap); err2 != nil {
			oracle.Close()
			return nil, err2
		}
		fmt.Printf("fleet: built %s index in %s, snapshot %s\n",
			oracle.Method(), time.Since(start).Round(time.Millisecond), snap)
		oracle.Close()
	}

	var bases []string
	for i := 0; i < n; i++ {
		oracle, err := reach.Load(snap)
		if err != nil {
			return nil, fmt.Errorf("replica %d: %w", i, err)
		}
		if noObservers {
			// Load rebuilds the stack when the snapshot lacks the section
			// (e.g. a pre-existing -snapshot file), so disable explicitly.
			oracle.DisableObservers()
		}
		lf.oracles = append(lf.oracles, oracle)
		g := oracle.Graph()
		cfg := server.Config{OrigIDs: g.OrigIDs()}
		// Bind the stream-transport listener before server.New so healthz
		// advertises the kernel-assigned port, mirroring reachd -mux-addr.
		var muxLn net.Listener
		if useMux {
			muxLn, err = net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return nil, err
			}
			cfg.MuxAddr = muxLn.Addr().String()
		}
		s := server.New(g, oracle, cfg)
		lf.servers = append(lf.servers, s)
		if muxLn != nil {
			ms := s.NewMuxServer(func(string, ...any) {})
			lf.muxSrvs = append(lf.muxSrvs, ms)
			go ms.Serve(muxLn)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		hs := &http.Server{Handler: s.Handler()}
		lf.httpSrvs = append(lf.httpSrvs, hs)
		go hs.Serve(ln)
		bases = append(bases, "http://"+ln.Addr().String())
	}

	rt, err := fleet.New(context.Background(), fleet.Config{
		Replicas:      bases,
		Wire:          wire,
		ProbeInterval: 200 * time.Millisecond,
		Logf:          func(string, ...any) {}, // probes are noise in a bench run
	})
	if err != nil {
		return nil, err
	}
	lf.router = rt
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	rhs := &http.Server{Handler: rt.Handler()}
	lf.httpSrvs = append(lf.httpSrvs, rhs)
	go rhs.Serve(rln)
	lf.base = "http://" + rln.Addr().String()

	// The router enrolls replicas asynchronously; wait until its healthz
	// says the whole fleet is in.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(lf.base + "/v1/healthz")
		if err == nil {
			var hz fleet.RouterHealthz
			okResp := resp.StatusCode == http.StatusOK
			err = jsonDecode(resp, &hz)
			if okResp && err == nil && hz.ReplicasHealthy == n {
				break
			}
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("fleet never became healthy: %v", err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	fmt.Printf("fleet: %d mmap replicas + router at %s\n", n, lf.base)
	ok = true
	return lf, nil
}

func jsonDecode(resp *http.Response, into any) error {
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(into)
}

func (lf *localFleet) stop() {
	lf.stopOnce.Do(func() {
		for _, hs := range lf.httpSrvs {
			hs.Close()
		}
		if lf.router != nil {
			lf.router.Close()
		}
		for _, ms := range lf.muxSrvs {
			// Force-close: the router (the only client) is gone already.
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			ms.Shutdown(ctx)
		}
		for _, s := range lf.servers {
			s.Close()
		}
		for _, o := range lf.oracles {
			o.Close()
		}
		if lf.snapTmp != "" {
			os.Remove(lf.snapTmp)
		}
	})
}
