// Command reachlint runs the repository's custom static analyzers
// (internal/lint) over the given package patterns, multichecker-style,
// and — unless -vet=false — the stock `go vet` suite (printf,
// copylocks, atomic, ...) alongside them.
//
// Usage:
//
//	go run ./cmd/reachlint [flags] [packages]
//
// With no packages, ./... is checked. Exit status is 0 when clean,
// 1 when any analyzer reported a diagnostic (or go vet failed), and
// 2 when the load itself failed.
//
// Flags:
//
//	-only name[,name]  run only the named custom analyzers
//	-vet=false         skip the go vet pass
//	-list              print the analyzer suite and exit
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
	"repro/internal/lint/loader"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	vet := flag.Bool("vet", true, "also run `go vet` over the same patterns")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Summary())
		}
		return
	}
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		var picked []*analysis.Analyzer
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "reachlint: unknown analyzer %q (see -list)\n", name)
				os.Exit(2)
			}
			picked = append(picked, a)
		}
		analyzers = picked
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "reachlint: %v\n", err)
		os.Exit(2)
	}
	prog, err := loader.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "reachlint: %v\n", err)
		os.Exit(2)
	}
	if prog.ModuleRoot != "" {
		lint.ReadmePath = filepath.Join(prog.ModuleRoot, "README.md")
	}

	g := analysis.NewGlobal(prog.Fset)
	diags, err := analysis.Run(g, prog.Packages, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "reachlint: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(relativized(d, cwd))
	}

	failed := len(diags) > 0
	if *vet {
		cmd := exec.Command("go", append([]string{"vet"}, patterns...)...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// relativized renders a diagnostic with the filename relative to the
// working directory when it is below it — stable, shorter CI output.
func relativized(d analysis.Diagnostic, cwd string) string {
	if d.Pos.Filename != "" {
		if rel, err := filepath.Rel(cwd, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			d.Pos.Filename = rel
		}
	}
	return d.String()
}
