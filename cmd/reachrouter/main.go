// Command reachrouter fronts a fleet of reachd replicas that all serve
// the same snapshot: it health-checks them by snapshot fingerprint
// (refusing to enroll a replica serving a different graph),
// load-balances single queries with power-of-two-choices on in-flight
// counts, scatters /v1/batch bodies into per-replica sub-batches and
// gathers the answers back in pair order, fails 429s and dead replicas
// over to another replica, and re-probes ejected replicas with
// exponential backoff.
//
// Usage:
//
//	reachrouter -replicas http://h1:8080,http://h2:8080,http://h3:8080
//	            [-addr :8090] [-probe-interval 1s] [-probe-timeout 2s]
//	            [-max-probe-backoff 30s] [-attempts 3] [-min-subbatch 64]
//	            [-max-batch 1048576] [-upstream-timeout 30s]
//	            [-slow-query-log 100ms] [-pprof] [-wire binary] [-mux]
//
// Replicas whose /v1/healthz advertises a stream-transport listener
// (reachd -mux-addr) get their sub-batches over a few persistent
// raw-TCP connections with per-batch HTTP fallback; -mux=false forces
// HTTP everywhere (docs/WIRE.md, "Stream transport").
//
// The router serves the same v1 API as a single reachd — /v1/healthz,
// /v1/reachable, /v1/batch, /v1/stats, /metrics — so clients point at
// the router exactly as they would at one replica. /v1/stats adds fleet
// and per-replica sections (routing counters plus each healthy replica's
// live upstream stats); /v1/healthz answers 503 while no replica is
// enrolled so a load balancer above can tell.
//
// Observability: the router stamps every request with an X-Reach-Trace
// ID (minting one when the client sent none) and forwards it to the
// replica it picks, so one ID follows a query through both tiers'
// logs; /metrics exposes routing counters, per-replica round-trip
// histograms and the same reach_http_request_seconds series reachd
// serves; -slow-query-log T writes a JSON line to stderr per routed
// request slower than T; -pprof mounts net/http/pprof.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/fleet"
)

func main() {
	var (
		addr       = flag.String("addr", ":8090", "listen address")
		replicas   = flag.String("replicas", "", "comma-separated reachd base URLs (required)")
		probeIvl   = flag.Duration("probe-interval", fleet.DefaultProbeInterval, "health-check cadence for enrolled replicas")
		probeTO    = flag.Duration("probe-timeout", fleet.DefaultProbeTimeout, "health probe timeout")
		maxBackoff = flag.Duration("max-probe-backoff", fleet.DefaultMaxProbeBackoff, "cap on re-probe backoff for dead replicas")
		attempts   = flag.Int("attempts", fleet.DefaultMaxAttempts, "distinct replicas to try per query or sub-batch")
		minSub     = flag.Int("min-subbatch", fleet.DefaultMinSubBatch, "smallest batch worth scattering across replicas")
		maxBatch   = flag.Int("max-batch", fleet.DefaultMaxBatchPairs, "max pairs per /v1/batch request")
		upstreamTO = flag.Duration("upstream-timeout", 30*time.Second, "per-request timeout toward a replica (0 = none)")
		slowTO     = flag.Duration("slow-query-log", 0, "log routed requests slower than this as JSON lines on stderr (0 disables)")
		pprof      = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		wire       = flag.String("wire", fleet.WireBinary, "encoding for replica sub-batches: binary (JSON fallback per replica) or json (ablation: force JSON everywhere)")
		muxOn      = flag.Bool("mux", true, "use the persistent stream transport to replicas that advertise it (false forces HTTP for every batch)")
	)
	flag.Parse()
	if err := run(*addr, *replicas, fleet.Config{
		Wire:               *wire,
		DisableMux:         !*muxOn,
		ProbeInterval:      *probeIvl,
		ProbeTimeout:       *probeTO,
		MaxProbeBackoff:    *maxBackoff,
		MaxAttempts:        *attempts,
		MinSubBatch:        *minSub,
		MaxBatchPairs:      *maxBatch,
		UpstreamTimeout:    *upstreamTO,
		SlowQueryThreshold: *slowTO,
		EnablePprof:        *pprof,
	}); err != nil {
		fmt.Fprintf(os.Stderr, "reachrouter: %v\n", err)
		os.Exit(1)
	}
}

func run(addr, replicas string, cfg fleet.Config) error {
	if replicas == "" {
		return fmt.Errorf("-replicas is required")
	}
	for _, r := range strings.Split(replicas, ",") {
		r = strings.TrimSuffix(strings.TrimSpace(r), "/")
		if r == "" {
			continue
		}
		if !strings.Contains(r, "://") {
			r = "http://" + r
		}
		cfg.Replicas = append(cfg.Replicas, r)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	rt, err := fleet.New(ctx, cfg)
	if err != nil {
		return err
	}
	defer rt.Close()

	httpSrv := &http.Server{Addr: addr, Handler: rt.Handler(), ReadHeaderTimeout: 10 * time.Second}
	errc := make(chan error, 1)
	go func() {
		log.Printf("routing over %d replicas on %s", len(cfg.Replicas), addr)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Print("shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			return fmt.Errorf("shutdown timed out")
		}
		return err
	}
	return nil
}
