// Command gengraph emits synthetic benchmark graphs from the dataset
// catalog (or a raw generator family) as edge-list files.
//
// Usage:
//
//	gengraph -dataset cit-Patents -scale 16 -out cit.txt
//	gengraph -family citation -n 10000 -m 40000 -seed 7 -out g.txt
//	gengraph -list
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/dataset"
	"repro/internal/gen"
	"repro/internal/graph"
)

func main() {
	var (
		ds     = flag.String("dataset", "", "catalog dataset name (see -list)")
		scale  = flag.Int("scale", dataset.DefaultScale, "divisor for large datasets")
		family = flag.String("family", "", "raw generator family: uniform, tree, citation, powerlaw, forest, xml, chain")
		n      = flag.Int("n", 10000, "vertices (family mode)")
		m      = flag.Int("m", 30000, "edges (family mode; approximate)")
		seed   = flag.Int64("seed", 1, "generator seed (family mode)")
		out    = flag.String("out", "", "output file (default stdout)")
		list   = flag.Bool("list", false, "list catalog datasets and exit")
	)
	flag.Parse()

	if *list {
		for _, s := range dataset.All() {
			fmt.Println(s.String())
		}
		return
	}
	if err := run(*ds, *scale, *family, *n, *m, *seed, *out); err != nil {
		fmt.Fprintf(os.Stderr, "gengraph: %v\n", err)
		os.Exit(1)
	}
}

func run(ds string, scale int, family string, n, m int, seed int64, out string) error {
	var g *graph.Graph
	switch {
	case ds != "":
		spec, ok := dataset.ByName(ds)
		if !ok {
			return fmt.Errorf("unknown dataset %q (try -list)", ds)
		}
		g = spec.Build(scale)
	case family != "":
		switch family {
		case "uniform":
			g = gen.UniformDAG(n, m, seed)
		case "tree":
			g = gen.TreeDAG(n, float64(m-n+1)/float64(n), 0, seed)
		case "citation":
			g = gen.CitationDAG(n, float64(m)/float64(n), 0.4, seed)
		case "powerlaw":
			g = gen.PowerLawDAG(n, m, 1.4, seed)
		case "forest":
			g = gen.ForestDAG(n, 2, seed)
		case "xml":
			g = gen.XMLDAG(n, 5, float64(m-n+1)/float64(n), seed)
		case "chain":
			g = gen.ChainDAG(n, n/50+1, 0.1, seed)
		default:
			return fmt.Errorf("unknown family %q", family)
		}
	default:
		return fmt.Errorf("one of -dataset or -family is required")
	}

	var w io.Writer = os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	fmt.Fprintf(os.Stderr, "gengraph: %s\n", graph.ComputeStats(g))
	return graph.WriteEdgeList(w, g)
}
