package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro/internal/server
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkServerBatch-8   	     100	    987654 ns/op	  123 B/op	       4 allocs/op
BenchmarkCacheHitRateZipf/policy=s3fifo-8         	  100000	       151.0 ns/op	        88.20 hit_%
PASS
ok  	repro/internal/server	2.345s
pkg: repro/internal/fleet
BenchmarkRouterBatch/replicas=3-8 	      50	    683696 ns/op	    748870 pairs/sec
BenchmarkNoProcsSuffix 	       1	   1000000 ns/op
--- BENCH: BenchmarkSomething
    some log line that is not a result
PASS
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != "reach-bench/v1" || rep.GOOS != "linux" || rep.GOARCH != "amd64" {
		t.Fatalf("report header: %+v", rep)
	}
	if !strings.Contains(rep.CPU, "Xeon") {
		t.Fatalf("cpu header not captured: %q", rep.CPU)
	}
	if len(rep.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4: %+v", len(rep.Benchmarks), rep.Benchmarks)
	}

	b := rep.Benchmarks[0]
	if b.Pkg != "repro/internal/server" || b.Name != "BenchmarkServerBatch" || b.Procs != 8 {
		t.Fatalf("first benchmark: %+v", b)
	}
	if b.Iterations != 100 || b.Metrics["ns/op"] != 987654 || b.Metrics["B/op"] != 123 || b.Metrics["allocs/op"] != 4 {
		t.Fatalf("first benchmark metrics: %+v", b)
	}

	// Custom b.ReportMetric units survive.
	if got := rep.Benchmarks[1].Metrics["hit_%"]; got != 88.20 {
		t.Fatalf("custom metric hit_%% = %v, want 88.20", got)
	}
	if rep.Benchmarks[1].Name != "BenchmarkCacheHitRateZipf/policy=s3fifo" {
		t.Fatalf("sub-benchmark name: %q", rep.Benchmarks[1].Name)
	}

	// Package context switches with pkg: headers.
	rb := rep.Benchmarks[2]
	if rb.Pkg != "repro/internal/fleet" || rb.Metrics["pairs/sec"] != 748870 {
		t.Fatalf("fleet benchmark: %+v", rb)
	}

	// No -P suffix means GOMAXPROCS was 1.
	if last := rep.Benchmarks[3]; last.Name != "BenchmarkNoProcsSuffix" || last.Procs != 1 {
		t.Fatalf("suffixless benchmark: %+v", last)
	}
}

func TestParseRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"BenchmarkBroken",                      // no fields
		"BenchmarkBroken-8 notanumber 1 ns/op", // bad iterations
		"BenchmarkBroken-8 10 xx ns/op",        // bad value
		"Benchmark result pending",             // prose starting with Benchmark
		"ok  repro 1.2s",
		"PASS",
	} {
		if b, ok := parseBenchLine("p", line); ok {
			t.Errorf("line %q wrongly parsed as %+v", line, b)
		}
	}
}
