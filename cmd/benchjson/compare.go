// Compare mode: diff two benchjson reports and fail on hot-path
// regressions. This is the CI perf gate — the checked-in baseline
// (BENCH_PR*.json) is the "old" side, the current run is the "new" side,
// and any gated benchmark whose ns/op grew by more than -max-regression
// percent fails the build.
//
//	benchjson -old BENCH_PR4.json -new BENCH_PR7.json \
//	    -gate BenchmarkDirectBatch,BenchmarkRouterBatch -max-regression 15
//
// A gate name matches a benchmark exactly or as a sub-benchmark prefix
// (BenchmarkRouterBatch matches BenchmarkRouterBatch/replicas=3). A gate
// matching nothing on either side fails too: a renamed benchmark must
// not silently turn the gate off.
package main

import (
	"fmt"
	"sort"
	"strings"
)

// comparison is the verdict for one gated benchmark.
type comparison struct {
	Key    string  // pkg-qualified benchmark name
	OldNs  float64 // baseline ns/op (0 when absent)
	NewNs  float64 // current ns/op
	Pct    float64 // (new-old)/old * 100
	Status string  // "ok", "regressed", "new baseline", "missing"
}

func (c comparison) String() string {
	switch c.Status {
	case "new baseline":
		return fmt.Sprintf("NEW  %-60s %12.1f ns/op (no baseline)", c.Key, c.NewNs)
	case "missing":
		return fmt.Sprintf("GONE %-60s baseline %12.1f ns/op has no current run", c.Key, c.OldNs)
	default:
		return fmt.Sprintf("%-4s %-60s %12.1f -> %12.1f ns/op (%+.1f%%)",
			strings.ToUpper(c.Status), c.Key, c.OldNs, c.NewNs, c.Pct)
	}
}

// benchKey identifies a benchmark across reports. Procs is included so a
// -cpu sweep cannot alias distinct rows.
func benchKey(b Benchmark) string {
	return fmt.Sprintf("%s.%s-%d", b.Pkg, b.Name, b.Procs)
}

// bestNs indexes a report by benchmark key. A key can carry several
// records: CI runs every benchmark once in the 1x smoke, then reruns the
// hot paths with real iteration counts and -count repeats. Per key, only
// the records with the highest iteration count compete (dropping the
// smoke), and the minimum ns/op among them wins — best-of-N, the
// standard low-noise estimator, because benchmark noise on a shared CI
// runner is one-sided (scheduling and neighbours only ever slow an
// iteration down). Benchmarks without ns/op are skipped.
func bestNs(rep Report) map[string]float64 {
	ns := make(map[string]float64, len(rep.Benchmarks))
	iters := make(map[string]int64, len(rep.Benchmarks))
	for _, b := range rep.Benchmarks {
		v, ok := b.Metrics["ns/op"]
		if !ok {
			continue
		}
		k := benchKey(b)
		cur, seen := iters[k]
		switch {
		case !seen || b.Iterations > cur:
			iters[k], ns[k] = b.Iterations, v
		case b.Iterations == cur && v < ns[k]:
			ns[k] = v
		}
	}
	return ns
}

// gateMatches reports whether a benchmark key's name component matches
// the gate: exactly, or as a sub-benchmark of it.
func gateMatches(gate string, b Benchmark) bool {
	return b.Name == gate || strings.HasPrefix(b.Name, gate+"/")
}

// compareReports evaluates every gate, returning the per-benchmark
// verdicts and whether the gate as a whole fails. maxPct is the largest
// tolerated ns/op growth in percent.
func compareReports(oldRep, newRep Report, gates []string, maxPct float64) ([]comparison, bool) {
	oldNs, newNs := bestNs(oldRep), bestNs(newRep)
	var out []comparison
	failed := false
	for _, gate := range gates {
		matched := map[string]bool{} // keys claimed by this gate, either side
		for _, b := range newRep.Benchmarks {
			if gateMatches(gate, b) {
				matched[benchKey(b)] = true
			}
		}
		newKeys := len(matched)
		for _, b := range oldRep.Benchmarks {
			if gateMatches(gate, b) {
				matched[benchKey(b)] = true
			}
		}
		if len(matched) == 0 {
			out = append(out, comparison{Key: gate, Status: "missing"})
			failed = true
			continue
		}
		if newKeys == 0 {
			// The baseline knows this benchmark but the current run never
			// produced it: the gate would pass vacuously forever.
			failed = true
		}
		keys := make([]string, 0, len(matched))
		for k := range matched {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			o, hasOld := oldNs[k]
			n, hasNew := newNs[k]
			switch {
			case !hasNew:
				out = append(out, comparison{Key: k, OldNs: o, Status: "missing"})
				failed = true
			case !hasOld:
				out = append(out, comparison{Key: k, NewNs: n, Status: "new baseline"})
			default:
				c := comparison{Key: k, OldNs: o, NewNs: n, Pct: (n - o) / o * 100}
				if c.Pct > maxPct {
					c.Status = "regressed"
					failed = true
				} else {
					c.Status = "ok"
				}
				out = append(out, c)
			}
		}
	}
	return out, failed
}
