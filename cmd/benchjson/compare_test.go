package main

import (
	"strings"
	"testing"
)

func bench(pkg, name string, ns float64) Benchmark {
	return benchIters(pkg, name, 100, ns)
}

func benchIters(pkg, name string, iters int64, ns float64) Benchmark {
	return Benchmark{Pkg: pkg, Name: name, Procs: 8, Iterations: iters,
		Metrics: map[string]float64{"ns/op": ns}}
}

func report(bs ...Benchmark) Report {
	return Report{Schema: "reach-bench/v1", Benchmarks: bs}
}

func findComparison(t *testing.T, results []comparison, frag string) comparison {
	t.Helper()
	for _, c := range results {
		if strings.Contains(c.Key, frag) {
			return c
		}
	}
	t.Fatalf("no comparison matching %q in %+v", frag, results)
	return comparison{}
}

func TestCompareWithinThreshold(t *testing.T) {
	oldRep := report(bench("p", "BenchmarkDirectBatch", 1000))
	newRep := report(bench("p", "BenchmarkDirectBatch", 1100))
	results, failed := compareReports(oldRep, newRep, []string{"BenchmarkDirectBatch"}, 15)
	if failed {
		t.Fatalf("+10%% failed a 15%% gate: %+v", results)
	}
	c := findComparison(t, results, "BenchmarkDirectBatch")
	if c.Status != "ok" || c.Pct < 9.9 || c.Pct > 10.1 {
		t.Fatalf("comparison = %+v, want ok at +10%%", c)
	}
}

func TestCompareRegressionFails(t *testing.T) {
	oldRep := report(bench("p", "BenchmarkDirectBatch", 1000))
	newRep := report(bench("p", "BenchmarkDirectBatch", 1200))
	results, failed := compareReports(oldRep, newRep, []string{"BenchmarkDirectBatch"}, 15)
	if !failed {
		t.Fatalf("+20%% passed a 15%% gate: %+v", results)
	}
	if c := findComparison(t, results, "BenchmarkDirectBatch"); c.Status != "regressed" {
		t.Fatalf("comparison = %+v, want regressed", c)
	}
}

func TestCompareImprovementPasses(t *testing.T) {
	oldRep := report(bench("p", "BenchmarkDirectBatch", 1000))
	newRep := report(bench("p", "BenchmarkDirectBatch", 400))
	if _, failed := compareReports(oldRep, newRep, []string{"BenchmarkDirectBatch"}, 15); failed {
		t.Fatal("a 60% improvement failed the gate")
	}
}

func TestCompareSubBenchmarks(t *testing.T) {
	// The gate name must pull in every sub-benchmark; one regressing
	// variant fails even when the other improves.
	oldRep := report(
		bench("p", "BenchmarkRouterBatch/replicas=1", 1000),
		bench("p", "BenchmarkRouterBatch/replicas=3", 1000),
	)
	newRep := report(
		bench("p", "BenchmarkRouterBatch/replicas=1", 900),
		bench("p", "BenchmarkRouterBatch/replicas=3", 1500),
	)
	results, failed := compareReports(oldRep, newRep, []string{"BenchmarkRouterBatch"}, 15)
	if !failed {
		t.Fatalf("regressed sub-benchmark passed: %+v", results)
	}
	if c := findComparison(t, results, "replicas=1"); c.Status != "ok" {
		t.Fatalf("improved variant = %+v, want ok", c)
	}
	if c := findComparison(t, results, "replicas=3"); c.Status != "regressed" {
		t.Fatalf("regressed variant = %+v, want regressed", c)
	}
	// A similarly-prefixed but distinct benchmark is NOT matched.
	oldRep.Benchmarks = append(oldRep.Benchmarks, bench("p", "BenchmarkRouterBatchX", 1))
	newRep.Benchmarks = append(newRep.Benchmarks, bench("p", "BenchmarkRouterBatchX", 100))
	if _, failed := compareReports(oldRep, newRep, []string{"BenchmarkRouterBatch/replicas=1"}, 15); failed {
		t.Fatal("exact sub-benchmark gate matched an unrelated benchmark")
	}
}

func TestCompareBestOfNWins(t *testing.T) {
	// CI appends dedicated high-iteration reruns (-count=3) after the 1x
	// smoke. Per benchmark, only the records at the highest iteration
	// count compete — the smoke is ignored even when its one hot-cache
	// iteration looks fast — and the minimum among them is compared,
	// because CI-runner noise only ever inflates a measurement.
	oldRep := report(
		benchIters("p", "BenchmarkDirectBatch", 1, 700), // flukey 1x smoke
		benchIters("p", "BenchmarkDirectBatch", 200, 1000),
		benchIters("p", "BenchmarkDirectBatch", 200, 1300), // noisy repeat
	)
	newRep := report(
		benchIters("p", "BenchmarkDirectBatch", 1, 9999),
		benchIters("p", "BenchmarkDirectBatch", 200, 1400),
		benchIters("p", "BenchmarkDirectBatch", 200, 1050),
	)
	results, failed := compareReports(oldRep, newRep, []string{"BenchmarkDirectBatch"}, 15)
	if failed {
		t.Fatalf("best-of-N comparison failed: %+v", results)
	}
	c := findComparison(t, results, "BenchmarkDirectBatch")
	if c.OldNs != 1000 || c.NewNs != 1050 {
		t.Fatalf("compared %v -> %v, want the per-side minima 1000 -> 1050", c.OldNs, c.NewNs)
	}
}

func TestCompareGateMatchingNothingFails(t *testing.T) {
	oldRep := report(bench("p", "BenchmarkDirectBatch", 1000))
	newRep := report(bench("p", "BenchmarkDirectBatch", 1000))
	results, failed := compareReports(oldRep, newRep, []string{"BenchmarkRenamedAway"}, 15)
	if !failed {
		t.Fatalf("gate naming no benchmark passed: %+v", results)
	}
}

func TestCompareGatedBenchMissingFromNewFails(t *testing.T) {
	oldRep := report(bench("p", "BenchmarkDirectBatch", 1000))
	newRep := report(bench("p", "BenchmarkOther", 1000))
	results, failed := compareReports(oldRep, newRep, []string{"BenchmarkDirectBatch"}, 15)
	if !failed {
		t.Fatal("gated benchmark absent from the current run passed")
	}
	if c := findComparison(t, results, "BenchmarkDirectBatch"); c.Status != "missing" {
		t.Fatalf("comparison = %+v, want missing", c)
	}
}

func TestCompareNewBaselineIsNotFailure(t *testing.T) {
	// A benchmark that exists only in the new run (first PR that adds it)
	// has nothing to regress against.
	oldRep := report(bench("p", "BenchmarkDirectBatch", 1000))
	newRep := report(
		bench("p", "BenchmarkDirectBatch", 1000),
		bench("p", "BenchmarkObserverStack/method=DL/observers=on", 50),
	)
	results, failed := compareReports(oldRep, newRep,
		[]string{"BenchmarkDirectBatch", "BenchmarkObserverStack"}, 15)
	if failed {
		t.Fatalf("new-baseline benchmark failed the gate: %+v", results)
	}
	if c := findComparison(t, results, "BenchmarkObserverStack"); c.Status != "new baseline" {
		t.Fatalf("comparison = %+v, want new baseline", c)
	}
}

func TestCompareDifferentPkgsSameName(t *testing.T) {
	// DirectBatch exists in internal/fleet; a same-named benchmark in
	// another package must be tracked as its own row.
	oldRep := report(bench("a", "BenchmarkDirectBatch", 1000), bench("b", "BenchmarkDirectBatch", 2000))
	newRep := report(bench("a", "BenchmarkDirectBatch", 1000), bench("b", "BenchmarkDirectBatch", 2600))
	results, failed := compareReports(oldRep, newRep, []string{"BenchmarkDirectBatch"}, 15)
	if !failed {
		t.Fatalf("regression in second package passed: %+v", results)
	}
	if c := findComparison(t, results, "a.BenchmarkDirectBatch"); c.Status != "ok" {
		t.Fatalf("pkg a = %+v, want ok", c)
	}
	if c := findComparison(t, results, "b.BenchmarkDirectBatch"); c.Status != "regressed" {
		t.Fatalf("pkg b = %+v, want regressed", c)
	}
}
