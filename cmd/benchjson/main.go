// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON document, so CI can record the perf trajectory
// as an artifact (BENCH_PR*.json) instead of numbers scrolling away in
// logs.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson > BENCH.json
//
// Every benchmark line ("BenchmarkX-8  100  123 ns/op  4 B/op ...")
// becomes one record carrying its package, name, GOMAXPROCS suffix,
// iteration count, and all metric pairs — including custom
// b.ReportMetric units like pairs/sec or hit_%. Exits non-zero when no
// benchmark line was found, so a silently-broken bench pipeline fails CI
// rather than uploading an empty artifact.
//
// With -old and -new it instead compares two previously-emitted reports
// and exits non-zero when a gated benchmark's ns/op regressed past
// -max-regression percent — the CI perf gate (see compare.go):
//
//	benchjson -old BENCH_PR4.json -new BENCH_PR7.json \
//	    -gate BenchmarkDirectBatch,BenchmarkRouterBatch -max-regression 15
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Pkg        string `json:"pkg"`
	Name       string `json:"name"`
	Procs      int    `json:"procs"`
	Iterations int64  `json:"iterations"`
	// Metrics maps unit → value, e.g. {"ns/op": 123.4, "B/op": 456,
	// "allocs/op": 7, "pairs/sec": 1.0e6}.
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the document benchjson emits.
type Report struct {
	Schema     string      `json:"schema"`
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// parse reads `go test -bench` output. Header lines (goos/goarch/pkg/
// cpu) update the current context; Benchmark lines become records;
// everything else (PASS, ok, test log noise) is ignored.
func parse(r io.Reader) (Report, error) {
	rep := Report{
		Schema:    "reach-bench/v1",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		case strings.HasPrefix(line, "goos: "):
			rep.GOOS = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			rep.GOARCH = strings.TrimPrefix(line, "goarch: ")
			continue
		}
		b, ok := parseBenchLine(pkg, line)
		if ok {
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	return rep, sc.Err()
}

// parseBenchLine parses one "BenchmarkName-P  N  v unit  v unit ..."
// line, reporting ok=false for anything that isn't one.
func parseBenchLine(pkg, line string) (Benchmark, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Benchmark{}, false
	}
	fields := strings.Fields(line)
	// Shortest valid line: name, iterations, one value, one unit.
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false
	}
	b := Benchmark{Pkg: pkg, Name: fields[0], Procs: 1, Metrics: map[string]float64{}}
	// The -P suffix is GOMAXPROCS, appended unless it is 1.
	if i := strings.LastIndex(b.Name, "-"); i > 0 {
		if p, err := strconv.Atoi(b.Name[i+1:]); err == nil && p > 0 {
			b.Name, b.Procs = b.Name[:i], p
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil || iters < 0 {
		return Benchmark{}, false
	}
	b.Iterations = iters
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}

// readReport loads a benchjson-emitted JSON report from disk.
func readReport(path string) (Report, error) {
	var rep Report
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	if len(rep.Benchmarks) == 0 {
		return rep, fmt.Errorf("%s: no benchmarks in report", path)
	}
	return rep, nil
}

func main() {
	var (
		oldPath = flag.String("old", "", "baseline report for compare mode")
		newPath = flag.String("new", "", "current report for compare mode")
		gateArg = flag.String("gate", "", "comma-separated benchmark names the compare gate enforces")
		maxPct  = flag.Float64("max-regression", 15, "largest tolerated ns/op growth in percent (compare mode)")
	)
	flag.Parse()

	if *oldPath != "" || *newPath != "" {
		if *oldPath == "" || *newPath == "" || *gateArg == "" {
			fmt.Fprintln(os.Stderr, "benchjson: compare mode needs -old, -new and -gate")
			os.Exit(2)
		}
		oldRep, err := readReport(*oldPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		newRep, err := readReport(*newPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		var gates []string
		for _, g := range strings.Split(*gateArg, ",") {
			if g = strings.TrimSpace(g); g != "" {
				gates = append(gates, g)
			}
		}
		results, failed := compareReports(oldRep, newRep, gates, *maxPct)
		for _, c := range results {
			fmt.Println(c)
		}
		if failed {
			fmt.Fprintf(os.Stderr, "benchjson: perf gate FAILED (max tolerated regression %.1f%%)\n", *maxPct)
			os.Exit(1)
		}
		fmt.Printf("perf gate OK: %d benchmarks within %.1f%%\n", len(results), *maxPct)
		return
	}

	rep, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin — is the bench pipeline broken?")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
